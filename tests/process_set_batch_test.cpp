// ProcessSetBatch must agree, lane for lane, with the scalar ProcessSet
// algebra it replaces -- the batched engine's correctness rests on the SoA
// ops being a pure re-layout, not a re-definition.
#include <gtest/gtest.h>

#include <vector>

#include "core/process_set.hpp"
#include "core/process_set_batch.hpp"
#include "core/quorum.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

constexpr std::uint64_t kBatchTestSeed = 0xBA7C4;

ProcessSet random_set(std::size_t universe, Rng& rng) {
  ProcessSet s(universe);
  for (std::size_t id = 0; id < universe; ++id) {
    if (rng.next_u64() % 2 == 0) s.insert(static_cast<ProcessId>(id));
  }
  return s;
}

TEST(ProcessSetBatch, LanesRoundTripThroughProcessSet) {
  for (const std::size_t n : {5u, 64u, 129u, 256u}) {
    SCOPED_TRACE("universe " + std::to_string(n));
    Rng rng(mix_seed(kBatchTestSeed, n));
    ProcessSetBatch batch(n, 8);
    std::vector<ProcessSet> mirror;
    for (std::size_t lane = 0; lane < batch.lanes(); ++lane) {
      const ProcessSet s = random_set(n, rng);
      batch.set_lane(lane, s);
      mirror.push_back(s);
    }
    for (std::size_t lane = 0; lane < batch.lanes(); ++lane) {
      EXPECT_EQ(batch.extract_lane(lane), mirror[lane]);
      EXPECT_EQ(batch.lane_count(lane), mirror[lane].count());
      mirror[lane].for_each([&](ProcessId id) {
        EXPECT_TRUE(batch.lane_contains(lane, id));
      });
    }
  }
}

TEST(ProcessSetBatch, LaneWiseAlgebraMatchesScalar) {
  constexpr std::size_t kUniverse = 200;
  constexpr std::size_t kLanes = 16;
  Rng rng(mix_seed(kBatchTestSeed, 1));

  ProcessSetBatch a(kUniverse, kLanes);
  ProcessSetBatch b(kUniverse, kLanes);
  std::vector<ProcessSet> sa, sb;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    sa.push_back(random_set(kUniverse, rng));
    sb.push_back(random_set(kUniverse, rng));
    a.set_lane(lane, sa.back());
    b.set_lane(lane, sb.back());
  }

  ProcessSetBatch inter = a;
  inter.intersect_lanes(b);
  ProcessSetBatch diff = a;
  diff.minus_lanes(b);
  ProcessSetBatch uni = a;
  uni.unite_lanes(b);

  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    EXPECT_EQ(inter.extract_lane(lane), sa[lane].intersected_with(sb[lane]));
    EXPECT_EQ(diff.extract_lane(lane), sa[lane].minus(sb[lane]));
    EXPECT_EQ(uni.extract_lane(lane), sa[lane].united_with(sb[lane]));
  }
}

TEST(ProcessSetBatch, BroadcastAlgebraMatchesScalar) {
  constexpr std::size_t kUniverse = 257;  // spilled, partial tail word
  constexpr std::size_t kLanes = 7;
  Rng rng(mix_seed(kBatchTestSeed, 2));

  ProcessSetBatch base(kUniverse, kLanes);
  std::vector<ProcessSet> mirror;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    mirror.push_back(random_set(kUniverse, rng));
    base.set_lane(lane, mirror[lane]);
  }
  const ProcessSet mask = random_set(kUniverse, rng);

  ProcessSetBatch inter = base;
  inter.intersect_broadcast(mask);
  ProcessSetBatch diff = base;
  diff.minus_broadcast(mask);
  ProcessSetBatch uni = base;
  uni.unite_broadcast(mask);

  std::vector<std::size_t> shared(kLanes);
  base.intersection_counts(mask, shared.data());
  std::vector<std::size_t> sizes(kLanes);
  base.counts(sizes.data());

  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    EXPECT_EQ(inter.extract_lane(lane), mirror[lane].intersected_with(mask));
    EXPECT_EQ(diff.extract_lane(lane), mirror[lane].minus(mask));
    EXPECT_EQ(uni.extract_lane(lane), mirror[lane].united_with(mask));
    EXPECT_EQ(shared[lane], mirror[lane].intersection_count(mask));
    EXPECT_EQ(sizes[lane], mirror[lane].count());
  }
}

TEST(ProcessSetBatch, SubquorumVerdictsMatchScalarIncludingTieBreak) {
  constexpr std::size_t kUniverse = 64;
  Rng rng(mix_seed(kBatchTestSeed, 3));

  // Include hand-built exact-half lanes so the lexical tie-break is
  // actually exercised, not just the majority fast paths.
  ProcessSet of(kUniverse);
  for (ProcessId p = 4; p < 12; ++p) of.insert(p);  // |of| = 8, lowest = 4

  std::vector<ProcessSet> lanes;
  ProcessSet half_with(kUniverse, {4, 5, 6, 7});     // half, contains lowest
  ProcessSet half_without(kUniverse, {8, 9, 10, 11});  // half, no lowest
  lanes.push_back(half_with);
  lanes.push_back(half_without);
  for (int i = 0; i < 14; ++i) lanes.push_back(random_set(kUniverse, rng));

  ProcessSetBatch batch(kUniverse, lanes.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    batch.set_lane(lane, lanes[lane]);
  }
  std::vector<bool> verdicts(lanes.size());
  // std::vector<bool> has no data(); use a plain buffer.
  std::vector<char> raw(lanes.size());
  batch.subquorum_of(of, reinterpret_cast<bool*>(raw.data()));
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    EXPECT_EQ(raw[lane] != 0, is_subquorum(lanes[lane], of));
  }
  EXPECT_NE(raw[0], raw[1]);  // the tie-break split the two half lanes
}

TEST(ProcessSetBatch, ShapeMismatchesThrow) {
  ProcessSetBatch a(64, 4);
  ProcessSetBatch b(64, 5);
  ProcessSetBatch c(65, 4);
  EXPECT_THROW(a.intersect_lanes(b), PreconditionViolation);
  EXPECT_THROW(a.minus_lanes(c), PreconditionViolation);
  EXPECT_THROW(a.set_lane(0, ProcessSet(63)), PreconditionViolation);
  EXPECT_THROW(a.lane_insert(0, 64), PreconditionViolation);
  EXPECT_THROW((void)a.lane_words(4), PreconditionViolation);
}

TEST(ProcessSetBatch, ResetReshapesAndClears) {
  ProcessSetBatch batch(64, 2);
  batch.lane_insert(0, 3);
  batch.reset(256, 4);
  EXPECT_EQ(batch.universe_size(), 256u);
  EXPECT_EQ(batch.lanes(), 4u);
  EXPECT_EQ(batch.words_per_lane(), 4u);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(batch.lane_count(lane), 0u);
  }
}

}  // namespace
}  // namespace dynvote
