// Round-trip and malformed-input tests for the binary codec.
#include <gtest/gtest.h>

#include <limits>

#include "util/codec.hpp"

namespace dynvote {
namespace {

TEST(Encoder, VarintSmallValuesAreOneByte) {
  Encoder enc;
  enc.put_varint(0);
  enc.put_varint(127);
  EXPECT_EQ(enc.size(), 2u);
}

TEST(Encoder, VarintLargeValuesRoundTrip) {
  const std::uint64_t values[] = {
      0, 1, 127, 128, 300, 16383, 16384,
      std::numeric_limits<std::uint32_t>::max(),
      std::numeric_limits<std::uint64_t>::max()};
  Encoder enc;
  for (std::uint64_t v : values) enc.put_varint(v);
  Decoder dec(enc.bytes());
  for (std::uint64_t v : values) EXPECT_EQ(dec.get_varint(), v);
  dec.finish();
}

TEST(Encoder, FixedU64RoundTripsAndIsLittleEndian) {
  Encoder enc;
  enc.put_u64_fixed(0x0102030405060708ULL);
  ASSERT_EQ(enc.size(), 8u);
  EXPECT_EQ(static_cast<unsigned>(enc.bytes()[0]), 0x08u);
  EXPECT_EQ(static_cast<unsigned>(enc.bytes()[7]), 0x01u);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u64_fixed(), 0x0102030405060708ULL);
}

TEST(Encoder, StringsAndBytesRoundTrip) {
  Encoder enc;
  enc.put_string("hello");
  enc.put_string("");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  enc.put_bytes(blob);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_bytes(), blob);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  dec.finish();
}

TEST(Decoder, TruncatedVarintThrows) {
  const std::byte bytes[] = {std::byte{0x80}};  // continuation, no terminator
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_varint(), DecodeError);
}

TEST(Decoder, TruncatedFixedThrows) {
  const std::byte bytes[] = {std::byte{1}, std::byte{2}};
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_u64_fixed(), DecodeError);
}

TEST(Decoder, OverlongVarintThrows) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  std::vector<std::byte> bytes(11, std::byte{0x80});
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_varint(), DecodeError);
}

TEST(Decoder, TrailingBytesFailFinish) {
  Encoder enc;
  enc.put_varint(7);
  enc.put_varint(8);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_varint(), 7u);
  EXPECT_THROW(dec.finish(), DecodeError);
}

TEST(Decoder, LengthPrefixBeyondInputThrows) {
  Encoder enc;
  enc.put_varint(100);  // claims 100 bytes follow
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_bytes(), DecodeError);
}

TEST(Decoder, OversizedLengthPrefixFailsBeforeAllocating) {
  // A hostile prefix claiming nearly 2^64 bytes must be rejected by the
  // item cap up front -- comparing it against `remaining()` alone would
  // already catch it here, but the cap is what protects callers whose
  // buffers are larger than any legitimate item.
  Encoder enc;
  enc.put_varint(std::numeric_limits<std::uint64_t>::max() - 1);
  Decoder dec(enc.bytes());
  try {
    (void)dec.get_bytes();
    FAIL() << "oversized prefix did not throw";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos)
        << e.what();
  }
}

TEST(Decoder, CallerItemCapTightensTheDefault) {
  Encoder enc;
  const std::vector<std::byte> blob(64, std::byte{0xAB});
  enc.put_bytes(blob);
  enc.put_string("0123456789");

  // Under the default cap both items are fine.
  Decoder relaxed(enc.bytes());
  EXPECT_EQ(relaxed.get_bytes(), blob);
  EXPECT_EQ(relaxed.get_string(), "0123456789");
  relaxed.finish();

  // A 32-byte budget rejects the blob even though the buffer holds it.
  Decoder strict(enc.bytes(), 32);
  EXPECT_THROW((void)strict.get_bytes(), DecodeError);

  // Strings obey the same budget.
  Decoder tiny(enc.bytes(), 8);
  EXPECT_THROW((void)tiny.get_bytes(), DecodeError);
  Encoder just_string;
  just_string.put_string("0123456789");
  Decoder tight(just_string.bytes(), 8);
  EXPECT_THROW((void)tight.get_string(), DecodeError);
}

TEST(Decoder, ItemExactlyAtCapIsAccepted) {
  Encoder enc;
  const std::vector<std::byte> blob(16, std::byte{0x5A});
  enc.put_bytes(blob);
  Decoder dec(enc.bytes(), 16);
  EXPECT_EQ(dec.get_bytes(), blob);
  dec.finish();
}

}  // namespace
}  // namespace dynvote
