// ProcessSet's spill path under the freelist arena, probed exactly at the
// SBO boundary: N=128 is the last inline universe, N=129 the first spilled
// one, and N=256/257 the two-words-past cases the batched engine sweeps.
// Verifies the set algebra and the wire format are representation-blind,
// that warmed-up spill churn performs zero heap allocations (the counting
// allocator is linked), and reports the arena's peak-bytes high-water mark.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/process_set.hpp"
#include "util/alloc_stats.hpp"
#include "util/codec.hpp"
#include "util/spill_arena.hpp"

namespace dynvote {
namespace {

const std::size_t kBoundaryUniverses[] = {128, 129, 256, 257};

/// Every third id starting at the universe tail, so multi-word masks get
/// non-trivial bits in every word including the partial tail word.
ProcessSet striped(std::size_t universe, std::size_t phase) {
  ProcessSet s(universe);
  for (std::size_t id = phase; id < universe; id += 3) {
    s.insert(static_cast<ProcessId>(id));
  }
  return s;
}

TEST(ProcessSetArena, AlgebraRoundTripsAcrossTheSboBoundary) {
  for (const std::size_t n : kBoundaryUniverses) {
    SCOPED_TRACE("universe " + std::to_string(n));
    const ProcessSet a = striped(n, 0);
    const ProcessSet b = striped(n, 1);
    const ProcessSet everyone = ProcessSet::full(n);

    // intersect/minus/count round-trip: a == (a ∩ x) ∪ (a \ x) for any x,
    // and the two parts partition a's count.
    const ProcessSet inter = a.intersected_with(b);
    const ProcessSet diff = a.minus(b);
    EXPECT_EQ(inter.united_with(diff), a);
    EXPECT_EQ(inter.count() + diff.count(), a.count());
    EXPECT_EQ(inter.count(), a.intersection_count(b));
    EXPECT_TRUE(inter.intersects(a) || inter.empty());

    // Striped phases are disjoint; together with phase 2 they tile the
    // universe.
    EXPECT_EQ(a.intersection_count(b), 0u);
    EXPECT_EQ(a.united_with(b).united_with(striped(n, 2)), everyone);

    // Complement arithmetic touches the partial tail word.
    const ProcessSet not_a = everyone.minus(a);
    EXPECT_EQ(not_a.count(), n - a.count());
    EXPECT_FALSE(not_a.intersects(a));
    EXPECT_TRUE(a.is_subset_of(everyone));
    EXPECT_EQ(everyone.minus(not_a), a);
  }
}

TEST(ProcessSetArena, EncodeDecodeRoundTripsAcrossTheSboBoundary) {
  for (const std::size_t n : kBoundaryUniverses) {
    SCOPED_TRACE("universe " + std::to_string(n));
    const ProcessSet original = striped(n, 2);
    Encoder enc;
    original.encode(enc);
    Decoder dec(enc.bytes());
    const ProcessSet restored = ProcessSet::decode(dec);
    EXPECT_EQ(restored, original);
    EXPECT_EQ(restored.universe_size(), n);
    EXPECT_EQ(restored.hash(), original.hash());
    EXPECT_EQ(restored.compare(original), 0);
  }
}

TEST(ProcessSetArena, SpilledSetsOrderAndCompareLikeInlineOnes) {
  // compare() is the session tie-break; it must give the same verdicts
  // whether the words live inline or in the arena.
  for (const std::size_t n : kBoundaryUniverses) {
    SCOPED_TRACE("universe " + std::to_string(n));
    ProcessSet lo(n, {0});
    ProcessSet hi(n, {static_cast<ProcessId>(n - 1)});
    EXPECT_NE(lo.compare(hi), 0);
    EXPECT_EQ(lo.compare(hi) < 0, hi.compare(lo) > 0);
    EXPECT_EQ(lo.compare(lo), 0);
  }
}

TEST(ProcessSetArena, WarmSpillChurnIsAllocationFree) {
  if (!alloc_hook_linked()) {
    GTEST_SKIP() << "dv_alloc_hook not linked; allocation counts unavailable";
  }

  constexpr std::size_t kN = 257;  // three words, partial tail
  const ProcessSet a = striped(kN, 0);
  const ProcessSet b = striped(kN, 1);
  const ProcessSet everyone = ProcessSet::full(kN);

  // Warm-up: populate the arena freelists for the spill size class.
  for (int i = 0; i < 16; ++i) {
    ProcessSet scratch = a.united_with(b);
    scratch = scratch.intersected_with(everyone);
    scratch = everyone.minus(scratch);
  }

  const std::uint64_t before = thread_allocations();
  std::size_t checksum = 0;
  for (int i = 0; i < 1000; ++i) {
    ProcessSet u = a.united_with(b);
    ProcessSet inv = everyone.minus(u);
    checksum += u.intersection_count(everyone) + inv.count();
  }
  const std::uint64_t allocs = thread_allocations() - before;
  EXPECT_GT(checksum, 0u);
  EXPECT_EQ(allocs, 0u)
      << "warmed-up spill-path algebra at N=" << kN << " allocated " << allocs
      << " times; the arena is supposed to absorb all spill churn";
}

TEST(ProcessSetArena, ReportsPeakBytes) {
  constexpr std::size_t kN = 256;
  std::vector<ProcessSet> held;
  held.reserve(64);
  for (int i = 0; i < 64; ++i) held.push_back(ProcessSet::full(kN));

  const SpillArenaStats stats = spill_arena_thread_stats();
  // 64 live spills of 4 words in 32-byte blocks, plus whatever the earlier
  // tests left warm: the high-water mark must at least cover the live sets.
  EXPECT_GE(stats.peak_bytes, held.size() * 32);
  EXPECT_GE(stats.allocs, held.size());
  EXPECT_GE(stats.live_bytes, held.size() * 32);
  RecordProperty("spill_arena_peak_bytes", static_cast<int>(stats.peak_bytes));
  RecordProperty("spill_arena_allocs", static_cast<int>(stats.allocs));
  std::printf("spill arena: peak_bytes=%llu allocs=%llu freelist_hits=%llu "
              "chunk_bytes=%llu\n",
              static_cast<unsigned long long>(stats.peak_bytes),
              static_cast<unsigned long long>(stats.allocs),
              static_cast<unsigned long long>(stats.freelist_hits),
              static_cast<unsigned long long>(stats.chunk_bytes));
}

}  // namespace
}  // namespace dynvote
