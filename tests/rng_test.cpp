#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace dynvote {
namespace {

TEST(Rng, DeterministicForAGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng rng(13);
  double total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRangeAndHitsAllValues) {
  Rng rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.below(0), PreconditionViolation);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(33);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.between(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(rng.between(9, 9), 9u);
  EXPECT_THROW((void)rng.between(5, 3), PreconditionViolation);
}

TEST(Rng, ChanceRespectsExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.5));   // clamped
    EXPECT_FALSE(rng.chance(-0.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(MixSeed, DistinguishesCoordinates) {
  // Different case coordinates must land in different streams.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 5; ++a) {
    for (std::uint64_t b = 0; b < 5; ++b) {
      for (std::uint64_t c = 0; c < 5; ++c) {
        seeds.insert(mix_seed(42, a, b, c));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 125u);
}

TEST(MixSeed, IsAPureFunction) {
  EXPECT_EQ(mix_seed(1, 2, 3, 4, 5), mix_seed(1, 2, 3, 4, 5));
  EXPECT_NE(mix_seed(1, 2, 3, 4, 5), mix_seed(1, 2, 3, 5, 4));
}

}  // namespace
}  // namespace dynvote
