// dvlint against its fixture corpus: every defect class must be caught at
// the expected location, every documented opt-out must be honored, the JSON
// report must parse, and -- the regression that keeps the tool honest -- the
// live src/ tree must be clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"
#include "util/json.hpp"

namespace dynvote::lint {
namespace {

std::string fixture_root(const std::string& name) {
  return std::string(DV_SOURCE_ROOT) + "/tests/lint_fixtures/" + name;
}

LintReport lint_fixture(const std::string& name,
                        std::vector<Suppression> suppressions = {}) {
  LintOptions options;
  options.root = fixture_root(name);
  options.suppressions = std::move(suppressions);
  return run_lint(options);
}

std::vector<std::string> details_of(const LintReport& report, CheckId check) {
  std::vector<std::string> out;
  for (const Finding& f : report.findings) {
    if (f.check == check) out.push_back(f.detail);
  }
  return out;
}

TEST(LintFixtures, CleanCorpusProducesNoFindings) {
  const LintReport report = lint_fixture("clean");
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, MissingSnapshotFieldFlaggedOnBothSides) {
  const LintReport report = lint_fixture("snapshot_missing");
  ASSERT_EQ(report.findings.size(), 2u) << render_text(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, CheckId::kSnapshotCompleteness);
    EXPECT_EQ(f.file, "core/widget.hpp");
    EXPECT_EQ(f.detail, "high_water_");
    EXPECT_NE(f.line, 0u);
  }
  // One finding per side, distinguished by the message.
  EXPECT_NE(report.findings[0].message, report.findings[1].message);
}

TEST(LintFixtures, EveryDeterminismHazardCaught) {
  const LintReport report = lint_fixture("determinism");
  const std::vector<std::string> details =
      details_of(report, CheckId::kDeterminism);
  ASSERT_EQ(report.findings.size(), details.size()) << render_text(report);
  const auto has = [&](const std::string& d) {
    return std::count(details.begin(), details.end(), d) == 1;
  };
  EXPECT_TRUE(has("rand")) << render_text(report);     // unseeded randomness
  EXPECT_TRUE(has("time")) << render_text(report);     // wall clock
  EXPECT_TRUE(has("map")) << render_text(report);      // pointer-keyed map
  EXPECT_TRUE(has("samples")) << render_text(report);  // unordered range-for
  EXPECT_EQ(details.size(), 4u) << render_text(report);
}

TEST(LintFixtures, LayeringViolationsCaught) {
  const LintReport report = lint_fixture("layering");
  const std::vector<std::string> details =
      details_of(report, CheckId::kLayering);
  ASSERT_EQ(report.findings.size(), details.size()) << render_text(report);
  ASSERT_EQ(details.size(), 2u) << render_text(report);
  // Sorted by line: bench/ include first, then the DAG climb.
  EXPECT_EQ(details[0], "bench/harness.hpp");
  EXPECT_EQ(details[1], "sim/driver.hpp");
}

TEST(LintFixtures, DecodePathAssertCaught) {
  const LintReport report = lint_fixture("decode_assert");
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kDecodeThrow);
  EXPECT_EQ(f.file, "gcs/codec.cpp");
  EXPECT_EQ(f.detail, "DV_ASSERT");
  EXPECT_NE(f.message.find("DecodeError"), std::string::npos);
}

TEST(LintFixtures, AtomicReadInsideFoldCaught) {
  const LintReport report = lint_fixture("atomic_fold");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kAtomicFold);
  EXPECT_EQ(f.file, "sim/racy_fold.hpp");
  EXPECT_EQ(f.detail, "hits_");
  EXPECT_NE(f.message.find("merge barrier"), std::string::npos);
  // The annotated twin (barriered_fold.hpp) must stay silent.
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, UngatedFormatMigrationCaught) {
  const LintReport report = lint_fixture("format_migration");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kFormatMigration);
  EXPECT_EQ(f.file, "core/ungated_frame.hpp");
  EXPECT_EQ(f.detail, "retries_");
  EXPECT_NE(f.message.find("envelope-version gate"), std::string::npos);
  // The correctly gated twin (gated_frame.hpp, same layout plus the gate
  // and an else-default) must stay silent.
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, GuardedByPairsCleanAndRacy) {
  const LintReport report = lint_fixture("guarded_by");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 2u) << render_text(report);
  // Both hits are in the racy twin; locked_queue.hpp (lock_guard,
  // unlock/relock flow, defer_lock, requires_lock helper, ctor writes)
  // must stay silent.
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, CheckId::kGuardedBy);
    EXPECT_EQ(f.file, "fabric/racy_queue.hpp");
    EXPECT_EQ(f.detail, "queue_");
    EXPECT_NE(f.message.find("'mutex_'"), std::string::npos);
  }
  EXPECT_EQ(report.findings[0].line, 13u);  // no lock at all
  EXPECT_EQ(report.findings[1].line, 20u);  // touch after .unlock()
}

TEST(LintFixtures, ProtocolExhaustivenessPairsCompleteAndPartial) {
  const LintReport report = lint_fixture("protocol_exhaustiveness");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 2u) << render_text(report);
  const Finding& missing = report.findings[0];
  EXPECT_EQ(missing.check, CheckId::kProtocolExhaustiveness);
  EXPECT_EQ(missing.file, "core/frames_partial.hpp");
  EXPECT_EQ(missing.line, 14u);
  EXPECT_EQ(missing.detail, "kBye");
  EXPECT_NE(missing.message.find("'SignalKind'"), std::string::npos);
  const Finding& swallower = report.findings[1];
  EXPECT_EQ(swallower.line, 24u);
  EXPECT_EQ(swallower.detail, "default");
  EXPECT_NE(swallower.message.find("non-throwing default"),
            std::string::npos);
  // frames_complete.hpp exercises the legal shapes: an exhaustive switch,
  // a throwing default, and a non-wire enum with a swallowing default.
}

TEST(LintFixtures, RngStreamPairsTaggedAndUntagged) {
  const LintReport report = lint_fixture("rng_stream");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 4u) << render_text(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, CheckId::kRngStream);
    EXPECT_EQ(f.file, "sim/streams_untagged.hpp");
  }
  // Registry collision (same value as kAlphaStreamTag), literal tag,
  // unknown tag, raw seed -- in line order.
  EXPECT_EQ(report.findings[0].line, 12u);
  EXPECT_EQ(report.findings[0].detail, "kCloneStreamTag");
  EXPECT_NE(report.findings[0].message.find("'kAlphaStreamTag'"),
            std::string::npos);
  EXPECT_EQ(report.findings[1].line, 20u);
  EXPECT_EQ(report.findings[1].detail, "child_seed");
  EXPECT_EQ(report.findings[2].line, 24u);
  EXPECT_NE(report.findings[2].message.find("'kGhostStreamTag'"),
            std::string::npos);
  EXPECT_EQ(report.findings[3].line, 28u);
  EXPECT_EQ(report.findings[3].detail, "schedule_rng");
}

TEST(LintFixtures, BoundedDecodePairsBoundedAndUnbounded) {
  const LintReport report = lint_fixture("bounded_decode");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 2u) << render_text(report);
  const Finding& via_count = report.findings[0];
  EXPECT_EQ(via_count.check, CheckId::kBoundedDecode);
  EXPECT_EQ(via_count.file, "gcs/unbounded_codec.hpp");
  EXPECT_EQ(via_count.line, 15u);
  EXPECT_EQ(via_count.detail, "n");  // reserve from an unbounded count
  EXPECT_NE(via_count.message.find("remaining"), std::string::npos);
  const Finding& via_getter = report.findings[1];
  EXPECT_EQ(via_getter.line, 23u);
  EXPECT_EQ(via_getter.detail, "get_varint");  // resize(dec.get_varint())
}

TEST(LintFixtures, TracePurityPairsPureAndImpure) {
  const LintReport report = lint_fixture("trace_purity");
  EXPECT_EQ(report.files_scanned, 2u);
  // pure_emit.hpp contributes nothing (its one impure argument carries the
  // documented opt-out); impure_emit.hpp flags all four shapes.
  ASSERT_EQ(report.findings.size(), 4u) << render_text(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, CheckId::kTracePurity);
    EXPECT_EQ(f.file, "sim/impure_emit.hpp");
  }
  EXPECT_EQ(report.findings[0].detail, "rng");
  EXPECT_NE(report.findings[0].message.find("randomness"), std::string::npos);
  EXPECT_EQ(report.findings[1].detail, "++");
  EXPECT_EQ(report.findings[2].detail, "=");
  EXPECT_NE(report.findings[2].message.find("assignment"), std::string::npos);
  EXPECT_EQ(report.findings[3].detail, "clear");
  EXPECT_NE(report.findings[3].message.find("mutator"), std::string::npos);
}

TEST(LintFixtures, LexerHandlesRawStringsAndContinuations) {
  // The fixture packs rand()/time() text into a multi-line raw string, a
  // delimited raw string and a backslash-continued comment; only the one
  // real call may fire, and at its true physical line (proving the lexer
  // kept line accounting across the multi-line literal).
  const LintReport report = lint_fixture("lexer");
  EXPECT_EQ(report.files_scanned, 1u);
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  EXPECT_EQ(report.findings[0].check, CheckId::kDeterminism);
  EXPECT_EQ(report.findings[0].file, "sim/tricky.hpp");
  EXPECT_EQ(report.findings[0].line, 20u);
  EXPECT_EQ(report.findings[0].detail, "rand");
}

TEST(LintFixtures, SuppressionFileSilencesKnownFindings) {
  const std::vector<Suppression> suppressions =
      load_suppressions(fixture_root("suppressed") + "/suppressions.txt");
  ASSERT_EQ(suppressions.size(), 1u);
  EXPECT_EQ(suppressions[0].check, "snapshot-completeness");
  EXPECT_EQ(suppressions[0].path_suffix, "core/widget.hpp");
  EXPECT_EQ(suppressions[0].line, 0u);

  const LintReport report = lint_fixture("suppressed", suppressions);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 2u);
}

TEST(LintFixtures, SuppressionForOtherCheckDoesNotApply) {
  const LintReport report =
      lint_fixture("suppressed", {{"determinism", "core/widget.hpp", 0}});
  EXPECT_EQ(report.findings.size(), 2u) << render_text(report);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, WildcardSuppressionAppliesToAnyCheck) {
  const LintReport report =
      lint_fixture("suppressed", {{"*", "widget.hpp", 0}});
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 2u);
}

std::string suppression_error(const std::string& file) {
  try {
    load_suppressions(fixture_root("suppressed_malformed") + "/" + file);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(LintFixtures, MalformedSuppressionLinesThrowWithLineNumber) {
  const std::string junk = suppression_error("trailing_junk.txt");
  EXPECT_NE(junk.find("malformed suppression"), std::string::npos) << junk;
  EXPECT_NE(junk.find(":3"), std::string::npos) << junk;  // not line 1 or 2
  EXPECT_NE(junk.find("trailing fields"), std::string::npos) << junk;

  const std::string colon = suppression_error("trailing_colon.txt");
  EXPECT_NE(colon.find(":1"), std::string::npos) << colon;
  EXPECT_NE(colon.find("trailing ':'"), std::string::npos) << colon;

  const std::string zero = suppression_error("line_zero.txt");
  EXPECT_NE(zero.find(":2"), std::string::npos) << zero;
  EXPECT_NE(zero.find("':0' matches nothing"), std::string::npos) << zero;

  const std::string unknown = suppression_error("unknown_check.txt");
  EXPECT_NE(unknown.find(":1"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("unknown check id 'not-a-check'"),
            std::string::npos)
      << unknown;
}

TEST(LintChecks, CatalogueRoundTripsAndCoversEveryCheck) {
  ASSERT_EQ(all_checks().size(), 11u);
  for (const CheckInfo& info : all_checks()) {
    EXPECT_EQ(to_string(info.id), info.name);
    const std::optional<CheckId> parsed = check_from_string(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.id);
    EXPECT_FALSE(info.summary.empty()) << info.name;
  }
  EXPECT_FALSE(check_from_string("no-such-check").has_value());
  EXPECT_FALSE(check_from_string("").has_value());
}

TEST(LintOptionsFilters, CheckFilterKeepsOnlySelectedChecks) {
  const LintReport full = lint_fixture("rng_stream");
  ASSERT_EQ(full.findings.size(), 4u);

  LintOptions options;
  options.root = fixture_root("rng_stream");
  options.checks = {CheckId::kRngStream};
  const LintReport same = run_lint(options);
  EXPECT_EQ(same.findings, full.findings);

  // A filter naming a check with no hits empties the report but still
  // scans the whole tree.
  options.checks = {CheckId::kBoundedDecode};
  const LintReport none = run_lint(options);
  EXPECT_TRUE(none.findings.empty()) << render_text(none);
  EXPECT_EQ(none.files_scanned, 2u);
}

TEST(LintOptionsFilters, OnlyFilesRestrictsReportNotContext) {
  const LintReport full = lint_fixture("protocol_exhaustiveness");
  ASSERT_EQ(full.findings.size(), 2u);

  LintOptions options;
  options.root = fixture_root("protocol_exhaustiveness");
  options.only_files = std::vector<std::string>{"core/frames_partial.hpp"};
  const LintReport restricted = run_lint(options);
  // The restricted report is exactly the full report filtered to the
  // changed file; frames_partial's findings all survive.
  EXPECT_EQ(restricted.findings, full.findings);
  EXPECT_EQ(restricted.files_scanned, 1u);

  options.only_files = std::vector<std::string>{"core/frames_complete.hpp"};
  const LintReport clean_side = run_lint(options);
  EXPECT_TRUE(clean_side.findings.empty()) << render_text(clean_side);
  EXPECT_EQ(clean_side.files_scanned, 1u);

  options.only_files = std::vector<std::string>{"core/not_in_tree.hpp"};
  const LintReport nothing = run_lint(options);
  EXPECT_TRUE(nothing.findings.empty());
  EXPECT_EQ(nothing.files_scanned, 0u);
}

TEST(LintFixtures, FindingsAreSortedAndUnique) {
  const LintReport report = lint_fixture("determinism");
  EXPECT_TRUE(
      std::is_sorted(report.findings.begin(), report.findings.end()));
  EXPECT_EQ(std::adjacent_find(report.findings.begin(),
                               report.findings.end()),
            report.findings.end());
}

TEST(LintFixtures, JsonReportIsValidAndCarriesFindings) {
  const LintReport dirty = lint_fixture("snapshot_missing");
  const std::string json = render_json(dirty, "snapshot_missing");
  EXPECT_TRUE(json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"dynvote.dvlint.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("high_water_"), std::string::npos);

  const std::string clean_json =
      render_json(lint_fixture("clean"), "clean");
  EXPECT_TRUE(json_is_valid(clean_json)) << clean_json;
  EXPECT_NE(clean_json.find("\"clean\":true"), std::string::npos);
}

TEST(LintSarif, ReportMatchesSarif210Shape) {
  const LintReport dirty = lint_fixture("rng_stream");
  ASSERT_FALSE(dirty.findings.empty());
  const std::string sarif = render_sarif(dirty, "rng_stream");
  const std::optional<JsonValue> doc = json_parse(sarif);
  ASSERT_TRUE(doc.has_value()) << sarif;

  // Top-level SARIF 2.1.0 envelope.
  EXPECT_EQ(doc->string_or("version", ""), "2.1.0");
  EXPECT_NE(doc->string_or("$schema", "").find("sarif-2.1.0"),
            std::string_view::npos);
  const JsonValue* runs = doc->find("runs");
  ASSERT_TRUE(runs != nullptr && runs->is_array());
  ASSERT_EQ(runs->items().size(), 1u);
  const JsonValue& run = runs->items()[0];

  // The driver advertises every check as a reporting rule, in CheckId
  // order, so ruleIndex below can index straight into it.
  const JsonValue* tool = run.find("tool");
  ASSERT_TRUE(tool != nullptr);
  const JsonValue* driver = tool->find("driver");
  ASSERT_TRUE(driver != nullptr);
  EXPECT_EQ(driver->string_or("name", ""), "dvlint");
  const JsonValue* rules = driver->find("rules");
  ASSERT_TRUE(rules != nullptr && rules->is_array());
  ASSERT_EQ(rules->items().size(), all_checks().size());
  for (std::size_t i = 0; i < rules->items().size(); ++i) {
    const JsonValue& rule = rules->items()[i];
    EXPECT_EQ(rule.string_or("id", ""), all_checks()[i].name);
    const JsonValue* text = rule.find("shortDescription");
    ASSERT_TRUE(text != nullptr);
    EXPECT_FALSE(text->string_or("text", "").empty());
  }

  // One result per finding, with a resolvable ruleId/ruleIndex pair, a
  // physical location anchored under SRCROOT and a stable fingerprint.
  const JsonValue* results = run.find("results");
  ASSERT_TRUE(results != nullptr && results->is_array());
  ASSERT_EQ(results->items().size(), dirty.findings.size());
  for (std::size_t i = 0; i < results->items().size(); ++i) {
    const JsonValue& result = results->items()[i];
    const Finding& finding = dirty.findings[i];
    EXPECT_EQ(result.string_or("ruleId", ""), to_string(finding.check));
    const auto rule_index =
        static_cast<std::size_t>(result.number_or("ruleIndex", -1.0));
    ASSERT_LT(rule_index, rules->items().size());
    EXPECT_EQ(rules->items()[rule_index].string_or("id", ""),
              to_string(finding.check));
    EXPECT_EQ(result.string_or("level", ""), "error");
    const JsonValue* message = result.find("message");
    ASSERT_TRUE(message != nullptr);
    EXPECT_EQ(message->string_or("text", ""), finding.message);
    const JsonValue* locations = result.find("locations");
    ASSERT_TRUE(locations != nullptr && locations->is_array());
    ASSERT_EQ(locations->items().size(), 1u);
    const JsonValue* physical =
        locations->items()[0].find("physicalLocation");
    ASSERT_TRUE(physical != nullptr);
    const JsonValue* artifact = physical->find("artifactLocation");
    ASSERT_TRUE(artifact != nullptr);
    EXPECT_EQ(artifact->string_or("uri", ""), finding.file);
    EXPECT_EQ(artifact->string_or("uriBaseId", ""), "SRCROOT");
    const JsonValue* region = physical->find("region");
    ASSERT_TRUE(region != nullptr);
    EXPECT_GE(region->number_or("startLine", 0.0), 1.0);
    EXPECT_TRUE(result.find("partialFingerprints") != nullptr);
  }

  // A clean run still emits a valid document with an empty results array.
  const std::optional<JsonValue> clean_doc =
      json_parse(render_sarif(lint_fixture("clean"), "clean"));
  ASSERT_TRUE(clean_doc.has_value());
  const JsonValue* clean_results =
      clean_doc->find("runs")->items()[0].find("results");
  ASSERT_TRUE(clean_results != nullptr && clean_results->is_array());
  EXPECT_TRUE(clean_results->items().empty());
}

TEST(LintFixtures, RenderTextSummarizesCounts) {
  const std::string text = render_text(lint_fixture("snapshot_missing"));
  EXPECT_NE(text.find("core/widget.hpp:"), std::string::npos);
  EXPECT_NE(text.find("2 findings"), std::string::npos);
}

TEST(LintFixtures, UnreadableRootThrows) {
  LintOptions options;
  options.root = fixture_root("no_such_fixture");
  EXPECT_THROW(run_lint(options), std::runtime_error);
  EXPECT_THROW(load_suppressions(fixture_root("no_such_file.txt")),
               std::runtime_error);
}

// The teeth: the shipped source tree itself stays dvlint-clean, so any
// future snapshot straggler, hash-order fold or layering break fails CI
// through this test even before the dedicated CI job runs.
TEST(LintLiveTree, SrcIsClean) {
  LintOptions options;
  options.root = std::string(DV_SOURCE_ROOT) + "/src";
  const LintReport report = run_lint(options);
  EXPECT_GE(report.files_scanned, 60u);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
}

}  // namespace
}  // namespace dynvote::lint
