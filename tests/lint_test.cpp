// dvlint against its fixture corpus: every defect class must be caught at
// the expected location, every documented opt-out must be honored, the JSON
// report must parse, and -- the regression that keeps the tool honest -- the
// live src/ tree must be clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/json.hpp"

namespace dynvote::lint {
namespace {

std::string fixture_root(const std::string& name) {
  return std::string(DV_SOURCE_ROOT) + "/tests/lint_fixtures/" + name;
}

LintReport lint_fixture(const std::string& name,
                        std::vector<Suppression> suppressions = {}) {
  LintOptions options;
  options.root = fixture_root(name);
  options.suppressions = std::move(suppressions);
  return run_lint(options);
}

std::vector<std::string> details_of(const LintReport& report, CheckId check) {
  std::vector<std::string> out;
  for (const Finding& f : report.findings) {
    if (f.check == check) out.push_back(f.detail);
  }
  return out;
}

TEST(LintFixtures, CleanCorpusProducesNoFindings) {
  const LintReport report = lint_fixture("clean");
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, MissingSnapshotFieldFlaggedOnBothSides) {
  const LintReport report = lint_fixture("snapshot_missing");
  ASSERT_EQ(report.findings.size(), 2u) << render_text(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, CheckId::kSnapshotCompleteness);
    EXPECT_EQ(f.file, "core/widget.hpp");
    EXPECT_EQ(f.detail, "high_water_");
    EXPECT_NE(f.line, 0u);
  }
  // One finding per side, distinguished by the message.
  EXPECT_NE(report.findings[0].message, report.findings[1].message);
}

TEST(LintFixtures, EveryDeterminismHazardCaught) {
  const LintReport report = lint_fixture("determinism");
  const std::vector<std::string> details =
      details_of(report, CheckId::kDeterminism);
  ASSERT_EQ(report.findings.size(), details.size()) << render_text(report);
  const auto has = [&](const std::string& d) {
    return std::count(details.begin(), details.end(), d) == 1;
  };
  EXPECT_TRUE(has("rand")) << render_text(report);     // unseeded randomness
  EXPECT_TRUE(has("time")) << render_text(report);     // wall clock
  EXPECT_TRUE(has("map")) << render_text(report);      // pointer-keyed map
  EXPECT_TRUE(has("samples")) << render_text(report);  // unordered range-for
  EXPECT_EQ(details.size(), 4u) << render_text(report);
}

TEST(LintFixtures, LayeringViolationsCaught) {
  const LintReport report = lint_fixture("layering");
  const std::vector<std::string> details =
      details_of(report, CheckId::kLayering);
  ASSERT_EQ(report.findings.size(), details.size()) << render_text(report);
  ASSERT_EQ(details.size(), 2u) << render_text(report);
  // Sorted by line: bench/ include first, then the DAG climb.
  EXPECT_EQ(details[0], "bench/harness.hpp");
  EXPECT_EQ(details[1], "sim/driver.hpp");
}

TEST(LintFixtures, DecodePathAssertCaught) {
  const LintReport report = lint_fixture("decode_assert");
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kDecodeThrow);
  EXPECT_EQ(f.file, "gcs/codec.cpp");
  EXPECT_EQ(f.detail, "DV_ASSERT");
  EXPECT_NE(f.message.find("DecodeError"), std::string::npos);
}

TEST(LintFixtures, AtomicReadInsideFoldCaught) {
  const LintReport report = lint_fixture("atomic_fold");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kAtomicFold);
  EXPECT_EQ(f.file, "sim/racy_fold.hpp");
  EXPECT_EQ(f.detail, "hits_");
  EXPECT_NE(f.message.find("merge barrier"), std::string::npos);
  // The annotated twin (barriered_fold.hpp) must stay silent.
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, UngatedFormatMigrationCaught) {
  const LintReport report = lint_fixture("format_migration");
  EXPECT_EQ(report.files_scanned, 2u);
  ASSERT_EQ(report.findings.size(), 1u) << render_text(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.check, CheckId::kFormatMigration);
  EXPECT_EQ(f.file, "core/ungated_frame.hpp");
  EXPECT_EQ(f.detail, "retries_");
  EXPECT_NE(f.message.find("envelope-version gate"), std::string::npos);
  // The correctly gated twin (gated_frame.hpp, same layout plus the gate
  // and an else-default) must stay silent.
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, SuppressionFileSilencesKnownFindings) {
  const std::vector<Suppression> suppressions =
      load_suppressions(fixture_root("suppressed") + "/suppressions.txt");
  ASSERT_EQ(suppressions.size(), 1u);
  EXPECT_EQ(suppressions[0].check, "snapshot-completeness");
  EXPECT_EQ(suppressions[0].path_suffix, "core/widget.hpp");
  EXPECT_EQ(suppressions[0].line, 0u);

  const LintReport report = lint_fixture("suppressed", suppressions);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 2u);
}

TEST(LintFixtures, SuppressionForOtherCheckDoesNotApply) {
  const LintReport report =
      lint_fixture("suppressed", {{"determinism", "core/widget.hpp", 0}});
  EXPECT_EQ(report.findings.size(), 2u) << render_text(report);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, WildcardSuppressionAppliesToAnyCheck) {
  const LintReport report =
      lint_fixture("suppressed", {{"*", "widget.hpp", 0}});
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
  EXPECT_EQ(report.suppressed, 2u);
}

TEST(LintFixtures, FindingsAreSortedAndUnique) {
  const LintReport report = lint_fixture("determinism");
  EXPECT_TRUE(
      std::is_sorted(report.findings.begin(), report.findings.end()));
  EXPECT_EQ(std::adjacent_find(report.findings.begin(),
                               report.findings.end()),
            report.findings.end());
}

TEST(LintFixtures, JsonReportIsValidAndCarriesFindings) {
  const LintReport dirty = lint_fixture("snapshot_missing");
  const std::string json = render_json(dirty, "snapshot_missing");
  EXPECT_TRUE(json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"dynvote.dvlint.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("high_water_"), std::string::npos);

  const std::string clean_json =
      render_json(lint_fixture("clean"), "clean");
  EXPECT_TRUE(json_is_valid(clean_json)) << clean_json;
  EXPECT_NE(clean_json.find("\"clean\":true"), std::string::npos);
}

TEST(LintFixtures, RenderTextSummarizesCounts) {
  const std::string text = render_text(lint_fixture("snapshot_missing"));
  EXPECT_NE(text.find("core/widget.hpp:"), std::string::npos);
  EXPECT_NE(text.find("2 findings"), std::string::npos);
}

TEST(LintFixtures, UnreadableRootThrows) {
  LintOptions options;
  options.root = fixture_root("no_such_fixture");
  EXPECT_THROW(run_lint(options), std::runtime_error);
  EXPECT_THROW(load_suppressions(fixture_root("no_such_file.txt")),
               std::runtime_error);
}

// The teeth: the shipped source tree itself stays dvlint-clean, so any
// future snapshot straggler, hash-order fold or layering break fails CI
// through this test even before the dedicated CI job runs.
TEST(LintLiveTree, SrcIsClean) {
  LintOptions options;
  options.root = std::string(DV_SOURCE_ROOT) + "/src";
  const LintReport report = run_lint(options);
  EXPECT_GE(report.files_scanned, 60u);
  EXPECT_TRUE(report.findings.empty()) << render_text(report);
}

}  // namespace
}  // namespace dynvote::lint
