// The observability layer: metrics fold/merge algebra, snapshot wire
// round-trips, the trace recorder's ring/drain behavior, and the
// dynvote.events.v1 file format -- including hostile-input rejection, since
// both formats now cross process boundaries (heartbeats, trace files).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/codec.hpp"

namespace dynvote::obs {
namespace {

MetricsSnapshot snap(
    std::vector<std::pair<std::string, std::uint64_t>> counters,
    std::vector<std::pair<std::string, std::uint64_t>> gauges = {},
    std::vector<HistogramSnapshot> histograms = {}) {
  MetricsSnapshot s;
  s.counters = std::move(counters);
  s.gauges = std::move(gauges);
  s.histograms = std::move(histograms);
  return s;
}

HistogramSnapshot hist(std::string name,
                       std::vector<std::uint64_t> values) {
  HistogramSnapshot h;
  h.name = std::move(name);
  for (const std::uint64_t v : values) {
    ++h.buckets[bucket_for(v)];
    h.sum += v;
  }
  return h;
}

std::vector<std::byte> encode(const MetricsSnapshot& s) {
  Encoder enc;
  s.encode_body(enc);
  return enc.take();
}

MetricsSnapshot decode(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  MetricsSnapshot s = MetricsSnapshot::decode_body(dec);
  dec.finish();
  return s;
}

bool same_bytes(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  return encode(a) == encode(b);
}

TEST(Buckets, BitWidthLayout) {
  EXPECT_EQ(bucket_for(0), 0u);
  EXPECT_EQ(bucket_for(1), 1u);
  EXPECT_EQ(bucket_for(2), 2u);
  EXPECT_EQ(bucket_for(3), 2u);
  EXPECT_EQ(bucket_for(4), 3u);
  EXPECT_EQ(bucket_for(UINT64_MAX), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_floor(0), 0u);
  EXPECT_EQ(bucket_floor(1), 1u);
  EXPECT_EQ(bucket_floor(2), 2u);
  EXPECT_EQ(bucket_floor(3), 4u);
  // Every value's bucket floor is <= the value, and the next floor is
  // above it -- the buckets tile the u64 range.
  for (const std::uint64_t v : {std::uint64_t{5}, std::uint64_t{1000},
                                std::uint64_t{1} << 40, UINT64_MAX}) {
    const std::size_t b = bucket_for(v);
    EXPECT_LE(bucket_floor(b), v);
    if (b + 1 < kHistogramBuckets) {
      EXPECT_GT(bucket_floor(b + 1), v);
    }
  }
}

TEST(SnapshotMerge, CountersAddGaugesMax) {
  MetricsSnapshot a = snap({{"x", 3}, {"y", 1}}, {{"g", 7}});
  const MetricsSnapshot b = snap({{"x", 2}, {"z", 5}}, {{"g", 4}, {"h", 9}});
  a.merge(b);
  EXPECT_EQ(a.counters,
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"x", 5}, {"y", 1}, {"z", 5}}));
  EXPECT_EQ(a.gauges,
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"g", 7}, {"h", 9}}));
}

TEST(SnapshotMerge, HistogramMergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = snap({}, {}, {hist("lat", {1, 2, 3, 100})});
  const MetricsSnapshot b = snap({}, {}, {hist("lat", {7, 7, 900})});
  const MetricsSnapshot c =
      snap({}, {}, {hist("lat", {0, 5}), hist("other", {42})});

  // Commutativity: a+b == b+a.
  MetricsSnapshot ab = a;
  ab.merge(b);
  MetricsSnapshot ba = b;
  ba.merge(a);
  EXPECT_TRUE(same_bytes(ab, ba));

  // Associativity: (a+b)+c == a+(b+c).
  MetricsSnapshot ab_c = ab;
  ab_c.merge(c);
  MetricsSnapshot bc = b;
  bc.merge(c);
  MetricsSnapshot a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(same_bytes(ab_c, a_bc));

  // And the fold really added: counts and sums line up.
  ASSERT_EQ(ab_c.histograms.size(), 2u);
  EXPECT_EQ(ab_c.histograms[0].name, "lat");
  EXPECT_EQ(ab_c.histograms[0].count(), 9u);
  EXPECT_EQ(ab_c.histograms[0].sum, 1u + 2 + 3 + 100 + 7 + 7 + 900 + 0 + 5);
  EXPECT_EQ(ab_c.histograms[1].name, "other");
  EXPECT_EQ(ab_c.histograms[1].count(), 1u);
}

TEST(SnapshotMerge, EmptyIsIdentity) {
  const MetricsSnapshot a =
      snap({{"x", 3}}, {{"g", 2}}, {hist("lat", {4, 9})});
  MetricsSnapshot left;
  left.merge(a);
  EXPECT_TRUE(same_bytes(left, a));
  MetricsSnapshot right = a;
  right.merge(MetricsSnapshot{});
  EXPECT_TRUE(same_bytes(right, a));
  EXPECT_TRUE(MetricsSnapshot{}.empty());
  EXPECT_FALSE(a.empty());
}

TEST(SnapshotDelta, CountersSubtractGaugesKeepCurrent) {
  const MetricsSnapshot base =
      snap({{"x", 3}, {"gone", 9}}, {{"g", 4}}, {hist("lat", {1, 1})});
  const MetricsSnapshot now =
      snap({{"x", 10}, {"new", 2}, {"gone", 9}}, {{"g", 2}},
           {hist("lat", {1, 1, 8})});
  const MetricsSnapshot delta = now.delta_since(base);
  EXPECT_EQ(delta.counters,
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"new", 2}, {"x", 7}}));
  EXPECT_EQ(delta.gauges,
            (std::vector<std::pair<std::string, std::uint64_t>>{{"g", 2}}));
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count(), 1u);
  EXPECT_EQ(delta.histograms[0].sum, 8u);
}

TEST(SnapshotWire, RoundTripsByteIdentically) {
  const MetricsSnapshot s =
      snap({{"a", 1}, {"b", UINT64_MAX}}, {{"g", 123}},
           {hist("lat", {0, 1, 5, 1u << 20}), hist("rt", {})});
  const std::vector<std::byte> bytes = encode(s);
  const MetricsSnapshot back = decode(bytes);
  EXPECT_EQ(encode(back), bytes);
  EXPECT_EQ(back.counters, s.counters);
  EXPECT_EQ(back.gauges, s.gauges);
}

TEST(SnapshotWire, DecodeNormalizesUnsortedInput) {
  // An unsorted (or duplicated) peer snapshot must still decode into the
  // canonical sorted-and-folded form, or cross-worker merges would depend
  // on peer memory layout.
  Encoder enc;
  enc.put_varint(2);  // counters
  enc.put_string("zz");
  enc.put_varint(1);
  enc.put_string("aa");
  enc.put_varint(2);
  enc.put_varint(0);  // gauges
  enc.put_varint(0);  // histograms
  const std::vector<std::byte> bytes = enc.take();
  Decoder dec(bytes);
  const MetricsSnapshot s = MetricsSnapshot::decode_body(dec);
  dec.finish();
  EXPECT_EQ(s.counters,
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"aa", 2}, {"zz", 1}}));
}

TEST(SnapshotWire, HostileCountsThrowBeforeAllocating) {
  {
    // Counter count far beyond the buffer.
    Encoder enc;
    enc.put_varint(std::uint64_t{1} << 40);
    const std::vector<std::byte> bytes = enc.take();
    Decoder dec(bytes);
    EXPECT_THROW((void)MetricsSnapshot::decode_body(dec), DecodeError);
  }
  {
    // Histogram bucket index out of range.
    Encoder enc;
    enc.put_varint(0);  // counters
    enc.put_varint(0);  // gauges
    enc.put_varint(1);  // one histogram
    enc.put_string("h");
    enc.put_varint(0);              // sum
    enc.put_varint(1);              // one bucket entry
    enc.put_varint(kHistogramBuckets);  // index == size: out of range
    enc.put_varint(1);
    const std::vector<std::byte> bytes = enc.take();
    Decoder dec(bytes);
    EXPECT_THROW((void)MetricsSnapshot::decode_body(dec), DecodeError);
  }
  {
    // Truncated mid-entry.
    Encoder enc;
    enc.put_varint(1);
    enc.put_string("only-a-name");
    const std::vector<std::byte> bytes = enc.take();
    Decoder dec(bytes);
    EXPECT_THROW((void)MetricsSnapshot::decode_body(dec), DecodeError);
  }
}

TEST(LiveRegistry, CountersGaugesHistogramsFold) {
  const MetricsSnapshot before = snapshot_metrics();

  static Counter counter("obs_test.counter");
  static Gauge gauge("obs_test.gauge");
  static Histogram histogram("obs_test.hist");
  counter.inc();
  counter.inc(4);
  gauge.set(17);
  histogram.record(3);
  histogram.record(300);

  // Another thread's increments land in the same named metric even after
  // the thread exits (its shard retires into the registry).
  std::thread t([] {
    static Counter same_name("obs_test.counter");
    same_name.inc(10);
    static Gauge g2("obs_test.gauge");
    g2.set(9);  // lower than the main thread's 17: max keeps 17
  });
  t.join();

  const MetricsSnapshot delta = snapshot_metrics().delta_since(before);
  std::uint64_t counter_value = 0;
  std::uint64_t gauge_value = 0;
  for (const auto& [name, value] : delta.counters) {
    if (name == "obs_test.counter") counter_value = value;
  }
  for (const auto& [name, value] : delta.gauges) {
    if (name == "obs_test.gauge") gauge_value = value;
  }
  EXPECT_EQ(counter_value, 15u);
  EXPECT_EQ(gauge_value, 17u);
  bool found_hist = false;
  for (const HistogramSnapshot& h : delta.histograms) {
    if (h.name != "obs_test.hist") continue;
    found_hist = true;
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum, 303u);
    EXPECT_EQ(h.buckets[bucket_for(3)], 1u);
    EXPECT_EQ(h.buckets[bucket_for(300)], 1u);
  }
  EXPECT_TRUE(found_hist);
}

// ---------------------------------------------------------------------------
// Trace recorder and the dynvote.events.v1 format

TEST(Trace, DisabledEmitsNothing) {
  ASSERT_FALSE(trace_enabled());
  DV_TRACE_INSTANT("never", 1, 2);
  { DV_TRACE_SPAN("never_span", 0, 0); }
  const TraceFile file = trace_drain();
  for (const TraceEvent& ev : file.events) {
    EXPECT_NE(file.names[ev.name_id], "never");
    EXPECT_NE(file.names[ev.name_id], "never_span");
  }
}

TEST(Trace, RecordsSpansAndInstantsInOrder) {
  trace_enable(64);
  {
    DV_TRACE_SPAN("outer", 7, 8);
    DV_TRACE_INSTANT("tick", 1, 2);
  }
  trace_disable();
  const TraceFile file = trace_drain();
  ASSERT_EQ(file.events.size(), 3u);
  EXPECT_EQ(file.names[file.events[0].name_id], "outer");
  EXPECT_EQ(file.events[0].kind, EventKind::kBegin);
  EXPECT_EQ(file.events[0].a0, 7u);
  EXPECT_EQ(file.events[0].a1, 8u);
  EXPECT_EQ(file.names[file.events[1].name_id], "tick");
  EXPECT_EQ(file.events[1].kind, EventKind::kInstant);
  EXPECT_EQ(file.names[file.events[2].name_id], "outer");
  EXPECT_EQ(file.events[2].kind, EventKind::kEnd);
  // Drain cleared the rings.
  EXPECT_TRUE(trace_drain().events.empty());
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  trace_enable(16);  // the documented minimum ring capacity
  const std::uint32_t name = intern_trace_name("drop_test");
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace_emit(EventKind::kInstant, name, i, 0);
  }
  trace_disable();
  const TraceFile file = trace_drain();
  ASSERT_EQ(file.events.size(), 16u);
  EXPECT_EQ(file.dropped, 4u);
  // The survivors are the newest sixteen, oldest first.
  EXPECT_EQ(file.events[0].a0, 4u);
  EXPECT_EQ(file.events[15].a0, 19u);
}

TEST(Trace, FileRoundTripsThroughEventsV1) {
  trace_enable(64);
  {
    DV_TRACE_SPAN(std::string("case p=8"), 0, 5);
    DV_TRACE_INSTANT("view_installed", 3, 4);
  }
  trace_disable();
  const TraceFile file = trace_drain();
  ASSERT_EQ(file.events.size(), 3u);

  const std::vector<std::byte> bytes = file.encode();
  const TraceFile back = TraceFile::decode(bytes);
  EXPECT_EQ(back.dropped, file.dropped);
  ASSERT_EQ(back.events.size(), file.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(back.events[i].ts_micros, file.events[i].ts_micros);
    EXPECT_EQ(back.events[i].kind, file.events[i].kind);
    EXPECT_EQ(back.events[i].a0, file.events[i].a0);
    EXPECT_EQ(back.events[i].a1, file.events[i].a1);
    EXPECT_EQ(back.names[back.events[i].name_id],
              file.names[file.events[i].name_id]);
  }
  // Re-encoding the decoded file is byte-identical.
  EXPECT_EQ(back.encode(), bytes);
}

TEST(Trace, DecodeRejectsHostileInput) {
  // Wrong schema string.
  {
    Encoder enc;
    enc.put_string("dynvote.events.v999");
    EXPECT_THROW((void)TraceFile::decode(enc.bytes()), DecodeError);
  }
  // Name count beyond the buffer.
  {
    Encoder enc;
    enc.put_string(kEventsSchema);
    enc.put_varint(std::uint64_t{1} << 50);
    EXPECT_THROW((void)TraceFile::decode(enc.bytes()), DecodeError);
  }
  // Event referencing a name id out of range.
  {
    Encoder enc;
    enc.put_string(kEventsSchema);
    enc.put_varint(1);
    enc.put_string("only");
    enc.put_varint(0);  // dropped
    enc.put_varint(1);  // one event
    enc.put_varint(0);  // ts
    enc.put_varint(5);  // name_id 5: out of range
    enc.put_varint(0);  // tid
    enc.put_u8(3);      // instant
    enc.put_varint(0);
    enc.put_varint(0);
    EXPECT_THROW((void)TraceFile::decode(enc.bytes()), DecodeError);
  }
  // Unknown event kind.
  {
    Encoder enc;
    enc.put_string(kEventsSchema);
    enc.put_varint(1);
    enc.put_string("only");
    enc.put_varint(0);
    enc.put_varint(1);
    enc.put_varint(0);
    enc.put_varint(0);
    enc.put_varint(0);
    enc.put_u8(9);  // no such EventKind
    enc.put_varint(0);
    enc.put_varint(0);
    EXPECT_THROW((void)TraceFile::decode(enc.bytes()), DecodeError);
  }
  // Truncated mid-event.
  {
    trace_enable(16);
    DV_TRACE_INSTANT("t", 1, 2);
    trace_disable();
    const std::vector<std::byte> bytes = trace_drain().encode();
    const std::span<const std::byte> cut(bytes.data(), bytes.size() - 1);
    EXPECT_THROW((void)TraceFile::decode(cut), DecodeError);
  }
  // Trailing garbage after a valid file.
  {
    trace_enable(16);
    DV_TRACE_INSTANT("t2", 1, 2);
    trace_disable();
    std::vector<std::byte> bytes = trace_drain().encode();
    bytes.push_back(std::byte{0x7f});
    EXPECT_THROW((void)TraceFile::decode(bytes), DecodeError);
  }
}

TEST(Trace, ThreadsGetDistinctTidsAndMergeSorted) {
  trace_enable(64);
  const std::uint32_t name = intern_trace_name("cross_thread");
  trace_emit(EventKind::kInstant, name, 1, 0);
  std::thread t([&] { trace_emit(EventKind::kInstant, name, 2, 0); });
  t.join();
  trace_disable();
  const TraceFile file = trace_drain();
  ASSERT_EQ(file.events.size(), 2u);
  EXPECT_NE(file.events[0].tid, file.events[1].tid);
  // Sorted by timestamp regardless of which ring an event came from.
  EXPECT_LE(file.events[0].ts_micros, file.events[1].ts_micros);
}

}  // namespace
}  // namespace dynvote::obs
