// End-to-end wire fidelity: running entire simulations with every
// multicast serialized to bytes and parsed back (as a real transport
// would) must be indistinguishable from in-memory delivery.  This proves
// the codec carries the complete protocol state of every algorithm -- the
// property a real Transis binding would rely on.
#include <gtest/gtest.h>

#include "sim/driver.hpp"

namespace dynvote {
namespace {

class WireFidelity : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(WireFidelity, SerializedTransportIsBehaviorallyIdentical) {
  SimulationConfig config;
  config.algorithm = GetParam();
  config.processes = 16;
  config.changes_per_run = 8;
  config.mean_rounds_between_changes = 1.5;
  config.seed = 2024;

  SimulationConfig wire = config;
  wire.serialize_on_wire = true;

  Simulation in_memory(config);
  Simulation serialized(wire);
  for (int run = 0; run < 6; ++run) {
    const RunResult a = in_memory.run_once();
    const RunResult b = serialized.run_once();
    EXPECT_EQ(a.primary_at_end, b.primary_at_end);
    EXPECT_EQ(a.rounds_executed, b.rounds_executed);
    EXPECT_EQ(a.observer_ambiguous_at_end, b.observer_ambiguous_at_end);
    EXPECT_EQ(a.observer_ambiguous_at_changes, b.observer_ambiguous_at_changes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, WireFidelity,
                         ::testing::ValuesIn(all_algorithm_kinds()),
                         [](const ::testing::TestParamInfo<AlgorithmKind>& p) {
                           std::string name(to_string(p.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dynvote
