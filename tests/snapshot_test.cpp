// The snapshot-equivalence layer: interrupting any simulation at any event,
// round-tripping it through snapshot bytes, and resuming must reproduce the
// uninterrupted execution exactly -- for every algorithm and both sweep
// modes.  Plus envelope hygiene: corrupted, truncated, or version-bumped
// snapshots are rejected with DecodeError, never misread.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/snapshot.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

SimulationConfig small_config(AlgorithmKind kind) {
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 16;
  config.changes_per_run = 5;
  config.mean_rounds_between_changes = 3.0;
  config.seed = 20260806;
  config.measure_wire_sizes = true;  // wire counters must survive restore too
  return config;
}

/// Drive `sim` to completion of its current (possibly mid-flight) run.
RunResult finish_run(Simulation& sim) {
  auto result = sim.run_events(std::size_t(-1));
  EXPECT_TRUE(result.has_value());
  return *result;
}

// The headline property: for every algorithm, a run interrupted at a
// pseudo-random event index, serialized, restored into a brand-new
// Simulation, and resumed produces the exact RunResult of the run that was
// never interrupted -- and the restored world keeps producing identical
// runs afterwards (the cascading guarantee).
TEST(Snapshot, InterruptRoundTripResumeReproducesEveryAlgorithm) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    SCOPED_TRACE(to_string(kind));
    const SimulationConfig config = small_config(kind);
    constexpr std::size_t kRuns = 4;  // cascading: later runs inherit state

    Simulation uninterrupted(config);
    std::vector<RunResult> expected;
    for (std::size_t r = 0; r < kRuns; ++r) {
      expected.push_back(uninterrupted.run_once());
    }

    // Interrupt points are seeded per algorithm, not hand-picked.
    Rng salt(mix_seed(0xC0FFEEu, static_cast<std::uint64_t>(kind)));
    const std::size_t interrupt_run = salt.below(kRuns);
    const std::size_t interrupt_event = 1 + salt.below(60);

    Simulation original(config);
    std::vector<RunResult> actual;
    for (std::size_t r = 0; r < interrupt_run; ++r) {
      actual.push_back(original.run_once());
    }
    auto early = original.run_events(interrupt_event);

    const std::vector<std::byte> bytes = save_snapshot(original);
    Simulation restored(config);
    restore_snapshot(restored, bytes);

    // Byte determinism: saving the restored world reproduces the snapshot.
    EXPECT_EQ(save_snapshot(restored), bytes);

    if (early.has_value()) {
      actual.push_back(*early);  // the budget outlived the run
    } else {
      EXPECT_TRUE(restored.run_in_progress());
      actual.push_back(finish_run(restored));
    }
    for (std::size_t r = interrupt_run + 1; r < kRuns; ++r) {
      actual.push_back(restored.run_once());
    }

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t r = 0; r < kRuns; ++r) {
      SCOPED_TRACE("run " + std::to_string(r));
      EXPECT_EQ(actual[r], expected[r]);
    }
    EXPECT_EQ(restored.total_changes(), uninterrupted.total_changes());
    EXPECT_EQ(restored.invariant_checks(), uninterrupted.invariant_checks());
    const WireStats& w0 = uninterrupted.gcs().wire_stats();
    const WireStats& w1 = restored.gcs().wire_stats();
    EXPECT_EQ(w1.messages_sent, w0.messages_sent);
    EXPECT_EQ(w1.protocol_messages_sent, w0.protocol_messages_sent);
    EXPECT_EQ(w1.max_message_bytes, w0.max_message_bytes);
    EXPECT_EQ(w1.total_message_bytes, w0.total_message_bytes);
  }
}

// Fresh-start mode is the single-run special case: interrupt the one run
// at many different event indices and resume each time.
TEST(Snapshot, FreshStartInterruptAtManyEventIndices) {
  const SimulationConfig config = small_config(AlgorithmKind::kYkd);
  Simulation uninterrupted(config);
  const RunResult expected = uninterrupted.run_once();

  for (std::size_t events : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
    SCOPED_TRACE(events);
    Simulation original(config);
    auto early = original.run_events(events);
    Simulation restored(config);
    restore_snapshot(restored, save_snapshot(original));
    const RunResult actual = early.has_value() ? *early : finish_run(restored);
    EXPECT_EQ(actual, expected);
  }
}

// A snapshot taken between runs (no run in progress) restores cleanly too.
TEST(Snapshot, BetweenRunsSnapshotResumesTheCascade) {
  const SimulationConfig config = small_config(AlgorithmKind::kDfls);
  Simulation uninterrupted(config);
  (void)uninterrupted.run_once();
  const RunResult expected = uninterrupted.run_once();

  Simulation original(config);
  (void)original.run_once();
  EXPECT_FALSE(original.run_in_progress());
  Simulation restored(config);
  restore_snapshot(restored, save_snapshot(original));
  EXPECT_FALSE(restored.run_in_progress());
  EXPECT_EQ(restored.run_once(), expected);
}

// The scout/shard contract: a snapshot produced with all observability off
// restores into a fully-instrumented simulation (the config hash excludes
// those flags) and the instrumented replay matches an instrumented run.
TEST(Snapshot, ScoutSnapshotRestoresIntoInstrumentedSimulation) {
  SimulationConfig instrumented = small_config(AlgorithmKind::kMr1p);
  SimulationConfig scout = instrumented;
  scout.check_invariants = false;
  scout.measure_wire_sizes = false;

  Simulation reference(instrumented);
  (void)reference.run_once();
  const RunResult expected = reference.run_once();

  Simulation scouting(scout);
  (void)scouting.run_once();

  Simulation resumed(instrumented);
  restore_snapshot(resumed, save_snapshot(scouting));
  EXPECT_EQ(resumed.run_once(), expected);
}

TEST(Snapshot, TruncatedBytesThrow) {
  Simulation sim(small_config(AlgorithmKind::kYkd));
  (void)sim.run_events(10);
  std::vector<std::byte> bytes = save_snapshot(sim);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE(keep);
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    Simulation target(small_config(AlgorithmKind::kYkd));
    EXPECT_THROW(restore_snapshot(target, cut), DecodeError);
  }
}

TEST(Snapshot, TrailingGarbageThrows) {
  Simulation sim(small_config(AlgorithmKind::kYkd));
  (void)sim.run_events(10);
  std::vector<std::byte> bytes = save_snapshot(sim);
  bytes.push_back(std::byte{0x5a});
  Simulation target(small_config(AlgorithmKind::kYkd));
  EXPECT_THROW(restore_snapshot(target, bytes), DecodeError);
}

TEST(Snapshot, VersionBumpedSchemaIsRejected) {
  Simulation sim(small_config(AlgorithmKind::kYkd));
  std::vector<std::byte> bytes = save_snapshot(sim);
  // put_string writes a varint length then the characters; the schema is
  // the first field, so its trailing version digit sits at offset 1+len-1.
  const std::size_t version_digit = kSnapshotSchema.size();
  ASSERT_EQ(static_cast<char>(bytes.at(version_digit)), '2');
  bytes.at(version_digit) = std::byte{'3'};
  Simulation target(small_config(AlgorithmKind::kYkd));
  EXPECT_THROW(restore_snapshot(target, bytes), DecodeError);
}

TEST(Snapshot, AlgorithmMismatchIsRejected) {
  Simulation ykd(small_config(AlgorithmKind::kYkd));
  const std::vector<std::byte> bytes = save_snapshot(ykd);
  Simulation dfls(small_config(AlgorithmKind::kDfls));
  EXPECT_THROW(restore_snapshot(dfls, bytes), DecodeError);
}

TEST(Snapshot, TrajectoryConfigMismatchIsRejected) {
  Simulation sim(small_config(AlgorithmKind::kYkd));
  const std::vector<std::byte> bytes = save_snapshot(sim);

  SimulationConfig other_seed = small_config(AlgorithmKind::kYkd);
  other_seed.seed ^= 1;
  Simulation target_seed(other_seed);
  EXPECT_THROW(restore_snapshot(target_seed, bytes), DecodeError);

  SimulationConfig other_rate = small_config(AlgorithmKind::kYkd);
  other_rate.mean_rounds_between_changes += 1.0;
  Simulation target_rate(other_rate);
  EXPECT_THROW(restore_snapshot(target_rate, bytes), DecodeError);
}

TEST(Snapshot, ConfigHashIgnoresObservabilityFlags) {
  SimulationConfig a = small_config(AlgorithmKind::kYkd);
  SimulationConfig b = a;
  b.check_invariants = !b.check_invariants;
  b.measure_wire_sizes = !b.measure_wire_sizes;
  b.serialize_on_wire = !b.serialize_on_wire;
  EXPECT_EQ(config_trajectory_hash(a), config_trajectory_hash(b));

  SimulationConfig c = a;
  c.changes_per_run += 1;
  EXPECT_NE(config_trajectory_hash(a), config_trajectory_hash(c));
}

FaultModelParams cross_model_params(FaultModelKind kind) {
  FaultModelParams params;
  params.kind = kind;
  if (kind == FaultModelKind::kRepairable) {
    params.repair_capacity = 2;
    params.repair_mean_rounds = 6.0;
  }
  if (kind == FaultModelKind::kTrace) {
    params.trace_json = R"({
      "schema": "dynvote.trace.v1", "processes": 16,
      "events": [
        {"at": 2,  "kind": "partition", "moved": [3, 4, 5]},
        {"at": 6,  "kind": "crash",     "process": 9},
        {"at": 11, "kind": "merge",     "of": [0, 3]},
        {"at": 15, "kind": "recovery",  "process": 9},
        {"at": 19, "kind": "partition", "moved": [1]}
      ]
    })";
  }
  return params;
}

// Every non-geometric model carries live mid-flight state (a sleeper set,
// a repair queue with due times, a replay cursor).  Interrupting at many
// event indices must round-trip that state bit-identically: the snapshot
// restores byte-for-byte and the resumed run matches the uninterrupted
// one.  (The geometric model is covered by every other test in this file.)
TEST(Snapshot, FaultModelMidFlightRoundTripsBitIdentically) {
  for (FaultModelKind model :
       {FaultModelKind::kSleepy, FaultModelKind::kRepairable,
        FaultModelKind::kTrace}) {
    SCOPED_TRACE(to_string(model));
    SimulationConfig config = small_config(AlgorithmKind::kYkd);
    config.fault_model = cross_model_params(model);

    Simulation uninterrupted(config);
    const RunResult expected = uninterrupted.run_once();

    bool saw_inactive = false;
    for (std::size_t events : {2u, 4u, 7u, 11u, 16u, 23u}) {
      SCOPED_TRACE(events);
      Simulation original(config);
      auto early = original.run_events(events);
      saw_inactive = saw_inactive || original.gcs().crashed().count() > 0;

      const std::vector<std::byte> bytes = save_snapshot(original);
      Simulation restored(config);
      restore_snapshot(restored, bytes);
      EXPECT_EQ(save_snapshot(restored), bytes);

      const RunResult actual =
          early.has_value() ? *early : finish_run(restored);
      EXPECT_EQ(actual, expected);
    }
    // The interrupt sweep must have caught the interesting moment at least
    // once: a snapshot taken while some process was out (mid-sleep,
    // mid-repair-queue, mid-outage) -- otherwise the round-trip above
    // never exercised the model's live state.
    EXPECT_TRUE(saw_inactive);
  }
}

// A snapshot records which fault model produced it; restoring into a
// simulation running a different model must be rejected, not misread.
TEST(Snapshot, FaultModelMismatchIsRejected) {
  SimulationConfig sleepy = small_config(AlgorithmKind::kYkd);
  sleepy.fault_model.kind = FaultModelKind::kSleepy;
  Simulation original(sleepy);
  (void)original.run_events(5);
  const std::vector<std::byte> bytes = save_snapshot(original);

  Simulation geometric(small_config(AlgorithmKind::kYkd));
  EXPECT_THROW(restore_snapshot(geometric, bytes), DecodeError);
}

// The experiment layer built on snapshots: a cascading case cut into scout
// checkpoints and re-run as shards merges to the exact serial result.
TEST(Snapshot, CascadingShardsMergeToSerialCase) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kOnePending}) {
    SCOPED_TRACE(to_string(kind));
    CaseSpec spec;
    spec.algorithm = kind;
    spec.processes = 16;
    spec.changes = 4;
    spec.mean_rounds = 3.0;
    spec.runs = 20;
    spec.mode = RunMode::kCascading;
    spec.base_seed = 424242;
    spec.measure_wire_sizes = true;

    const CaseResult serial = run_case(spec);

    const std::vector<std::uint64_t> boundaries = {7, 13};
    const std::vector<CascadeCheckpoint> checkpoints =
        scout_cascading_case(spec, boundaries);
    ASSERT_EQ(checkpoints.size(), 2u);
    EXPECT_EQ(checkpoints[0].first_run, 7u);
    EXPECT_EQ(checkpoints[1].first_run, 13u);

    CaseResult merged = run_cascading_shard(spec, CascadeCheckpoint{}, 7);
    merged.merge(run_cascading_shard(spec, checkpoints[0], 6));
    merged.merge(run_cascading_shard(spec, checkpoints[1], 7));

    EXPECT_EQ(merged.runs, serial.runs);
    EXPECT_EQ(merged.successes, serial.successes);
    EXPECT_EQ(merged.success_per_run, serial.success_per_run);
    EXPECT_EQ(merged.stable.buckets, serial.stable.buckets);
    EXPECT_EQ(merged.in_progress.buckets, serial.in_progress.buckets);
    EXPECT_EQ(merged.total_rounds, serial.total_rounds);
    EXPECT_EQ(merged.total_changes, serial.total_changes);
    EXPECT_EQ(merged.wire.messages_sent, serial.wire.messages_sent);
    EXPECT_EQ(merged.wire.max_message_bytes, serial.wire.max_message_bytes);
    EXPECT_EQ(merged.wire.total_message_bytes,
              serial.wire.total_message_bytes);
    EXPECT_EQ(merged.invariant_checks, serial.invariant_checks);
  }
}

}  // namespace
}  // namespace dynvote
