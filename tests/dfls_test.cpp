// DFLS: the extra garbage-collection round and its availability cost.
#include <gtest/gtest.h>

#include "core/dfls.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

using test::all_in_primary;
using test::no_cross;
using test::settle;

TEST(Dfls, FormationTakesThreeRoundsToShedAmbiguousSessions) {
  Gcs gcs(AlgorithmKind::kDfls, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  gcs.step_round();  // states sent
  gcs.step_round();  // states delivered, attempts sent
  gcs.step_round();  // attempts delivered: PRIMARY formed...
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));
  // ...but the attempt session is still held as ambiguous until the GC
  // round completes.
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 1u);
  gcs.step_round();  // GC round delivered
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 0u);
}

TEST(Dfls, InterruptedGcRoundRetainsAmbiguousSessions) {
  Gcs gcs(AlgorithmKind::kDfls, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  gcs.step_round();
  gcs.step_round();
  gcs.step_round();  // primary {0,1,2,3} formed; GC messages in flight
  // A change hits before the GC round lands: sessions stay.
  gcs.apply_partition(gcs.topology().component_of(0), ProcessSet(5, {3}),
                      no_cross());
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 1u);
  settle(gcs);
  // The retained session {0,1,2,3} constrains the next formation; {0,1,2}
  // is a subquorum of it (3 of 4), so the formation still succeeds here.
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2})));
}

TEST(Dfls, YkdDeletesImmediatelyWhereDflsWaits) {
  const auto ambiguous_right_after_formation = [](AlgorithmKind kind) {
    Gcs gcs(kind, 4);
    gcs.apply_partition(0, ProcessSet(4, {3}));
    gcs.step_round();
    gcs.step_round();
    gcs.step_round();  // formation completes here for both
    EXPECT_TRUE(gcs.algorithm(0).in_primary());
    return gcs.algorithm(0).debug_info().ambiguous_count;
  };
  EXPECT_EQ(ambiguous_right_after_formation(AlgorithmKind::kYkd), 0u);
  EXPECT_EQ(ambiguous_right_after_formation(AlgorithmKind::kDfls), 1u);
}

TEST(Dfls, RetainedSessionCanRefuseAPrimaryYkdWouldForm) {
  // The source of the thesis's ~3% gap: a session retained only because
  // DFLS's GC round was interrupted constrains a later decision.
  const auto drive = [](AlgorithmKind kind) {
    Gcs gcs(kind, 8);
    // Form primary {0..5} (6 of 8).
    gcs.apply_partition(0, ProcessSet(8, {6, 7}));
    settle(gcs);
    EXPECT_TRUE(gcs.algorithm(0).in_primary());

    // Interrupt the *next* formation attempt of {0..5} after re-forming:
    // split {0,1,2} mid-GC so DFLS still holds {0..5} (and older sessions)
    // as ambiguous.
    gcs.apply_partition(0, ProcessSet(8, {3, 4, 5}),
                        [](ProcessId) { return false; });
    // {0,1,2} is a subquorum of {0..5} (3 of 6 with lexical smallest 0).
    while (gcs.step_round()) {
    }
    return gcs.algorithm(0).in_primary();
  };
  // Both should form {0,1,2} in this benign case -- the scenario exercises
  // the code path; statistical gaps are measured by the benches.
  EXPECT_TRUE(drive(AlgorithmKind::kYkd));
  EXPECT_TRUE(drive(AlgorithmKind::kDfls));
}

TEST(Dfls, GcRoundFromWrongFormationIsIgnored) {
  const View initial{1, ProcessSet::full(3)};
  Dfls alg(0, initial);
  alg.view_changed(View{2, ProcessSet(3, {0, 1})});

  Message m;
  auto gc = std::make_shared<GcRoundPayload>();
  gc->view_id = 2;
  gc->formed_number = 999;  // no such formation
  m.protocol = gc;
  (void)alg.incoming_message(std::move(m), 1);
  EXPECT_FALSE(alg.in_primary());  // nothing formed, nothing crashed
}

}  // namespace
}  // namespace dynvote
