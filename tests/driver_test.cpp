// The simulation driver: determinism, quiescence, statistics collection,
// and fresh-start vs cascading semantics.
#include <gtest/gtest.h>

#include "sim/driver.hpp"

namespace dynvote {
namespace {

SimulationConfig base_config() {
  SimulationConfig config;
  config.algorithm = AlgorithmKind::kYkd;
  config.processes = 16;
  config.changes_per_run = 6;
  config.mean_rounds_between_changes = 3.0;
  config.seed = 12345;
  return config;
}

TEST(Simulation, RunAppliesExactlyTheConfiguredChanges) {
  Simulation sim(base_config());
  const RunResult r = sim.run_once();
  EXPECT_EQ(r.changes_applied, 6u);
  EXPECT_EQ(r.observer_ambiguous_at_changes.size(), 6u);
  EXPECT_EQ(sim.total_changes(), 6u);
}

TEST(Simulation, SameSeedIsFullyDeterministic) {
  Simulation a(base_config());
  Simulation b(base_config());
  for (int run = 0; run < 5; ++run) {
    const RunResult ra = a.run_once();
    const RunResult rb = b.run_once();
    EXPECT_EQ(ra.primary_at_end, rb.primary_at_end);
    EXPECT_EQ(ra.rounds_executed, rb.rounds_executed);
    EXPECT_EQ(ra.observer_ambiguous_at_end, rb.observer_ambiguous_at_end);
    EXPECT_EQ(ra.observer_ambiguous_at_changes,
              rb.observer_ambiguous_at_changes);
  }
}

TEST(Simulation, DifferentSeedsDiffer) {
  // Across several runs, at least something must differ.
  SimulationConfig other = base_config();
  other.seed = 54321;
  Simulation a(base_config());
  Simulation b(other);
  bool any_difference = false;
  for (int run = 0; run < 5; ++run) {
    const RunResult ra = a.run_once();
    const RunResult rb = b.run_once();
    any_difference |= ra.rounds_executed != rb.rounds_executed;
    any_difference |= ra.primary_at_end != rb.primary_at_end;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Simulation, EndsQuiescent) {
  SimulationConfig config = base_config();
  Simulation sim(config);
  (void)sim.run_once();
  // After stabilization nothing is in flight and nobody wants to talk.
  EXPECT_TRUE(sim.gcs().network_idle());
  EXPECT_FALSE(sim.gcs().step_round());
}

TEST(Simulation, CascadingRunsContinueFromPriorState) {
  Simulation sim(base_config());
  (void)sim.run_once();
  const auto views_after_first = sim.gcs().view_of(0).id;
  (void)sim.run_once();
  // View ids keep growing: the second run did not reset the world.
  EXPECT_GT(sim.gcs().view_of(0).id, views_after_first);
  EXPECT_EQ(sim.total_changes(), 12u);
}

TEST(Simulation, InvariantCheckingIsOnByDefault) {
  Simulation sim(base_config());
  (void)sim.run_once();
  EXPECT_GT(sim.invariant_checks(), 0u);
}

TEST(Simulation, EveryAlgorithmRunsCleanly) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    SimulationConfig config = base_config();
    config.algorithm = kind;
    config.changes_per_run = 8;
    Simulation sim(config);
    for (int run = 0; run < 3; ++run) {
      EXPECT_NO_THROW((void)sim.run_once()) << to_string(kind);
    }
  }
}

TEST(Simulation, RejectsBadConfigs) {
  SimulationConfig too_small = base_config();
  too_small.processes = 1;
  EXPECT_THROW(Simulation{too_small}, PreconditionViolation);

  SimulationConfig bad_observer = base_config();
  bad_observer.observer = 99;
  EXPECT_THROW(Simulation{bad_observer}, PreconditionViolation);
}

TEST(Simulation, ZeroRateMeansNoRoundsBetweenChanges) {
  SimulationConfig config = base_config();
  config.mean_rounds_between_changes = 0.0;
  config.changes_per_run = 4;
  Simulation sim(config);
  const RunResult r = sim.run_once();
  // All rounds happen in stabilization; the injection phase has none.
  // Stabilization of a 2-round protocol takes only a handful of rounds.
  EXPECT_LE(r.rounds_executed, 16u);
}

}  // namespace
}  // namespace dynvote
