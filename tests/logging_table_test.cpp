// Coverage for the support utilities: the leveled logger and the CSV
// side-channel of the table writer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "sim/table.hpp"
#include "util/logging.hpp"

namespace dynvote {
namespace {

TEST(Logging, LevelRoundTripAndThreshold) {
  const LogLevel original = log_level();

  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);

  set_log_level(original);
}

TEST(Logging, ParseNames) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
}

TEST(Logging, MacroHonorsThreshold) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  // The stream expression must not even be evaluated above the threshold.
  DV_LOG_DEBUG("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

TEST(Csv, WritesWhenDirectoryConfigured) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dynvote_csv_test";
  fs::create_directories(dir);
  ::setenv("DV_CSV_DIR", dir.c_str(), 1);

  EXPECT_TRUE(maybe_write_csv("unit", "a,b\n1,2\n"));
  std::ifstream in(dir / "unit.csv");
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "a,b\n1,2\n");

  ::unsetenv("DV_CSV_DIR");
  fs::remove_all(dir);
}

TEST(Csv, NoopWithoutConfiguration) {
  ::unsetenv("DV_CSV_DIR");
  EXPECT_FALSE(maybe_write_csv("unit", "a\n"));
}

}  // namespace
}  // namespace dynvote
