// The algorithm-to-application contract (thesis §2.1), enforced uniformly
// across every algorithm: payload stripping, app-data preservation,
// event-driven quiescence (state changes only on new information), and
// stale-view hygiene.
#include <gtest/gtest.h>

#include "core/algorithm.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

class AlgorithmContract : public ::testing::TestWithParam<AlgorithmKind> {
 protected:
  static std::unique_ptr<PrimaryComponentAlgorithm> fresh(ProcessId self = 0,
                                                          std::size_t n = 4) {
    return make_algorithm(GetParam(), self, View{1, ProcessSet::full(n)});
  }
};

TEST_P(AlgorithmContract, FactoryProducesTheRightAlgorithm) {
  const auto alg = fresh();
  EXPECT_EQ(alg->name(), to_string(GetParam()));
  EXPECT_EQ(alg->self(), 0u);
  EXPECT_EQ(alg->initial_view().members, ProcessSet::full(4));
}

TEST_P(AlgorithmContract, StartsInPrimaryInTheInitialView) {
  // "The algorithm must be started with a list of all of the processes in
  // the very first view" -- and everyone together is the first primary.
  EXPECT_TRUE(fresh()->in_primary());
}

TEST_P(AlgorithmContract, ConstructionRequiresMembership) {
  EXPECT_THROW(
      make_algorithm(GetParam(), 9, View{1, ProcessSet::full(4)}),
      PreconditionViolation);
}

TEST_P(AlgorithmContract, IncomingStripsProtocolAndKeepsAppData) {
  const auto alg = fresh();
  Message m = Message::from_text("application bytes");
  auto payload = std::make_shared<GcRoundPayload>();
  payload->view_id = 1;
  m.protocol = payload;

  const Message out = alg->incoming_message(std::move(m), 1);
  EXPECT_FALSE(out.has_protocol());
  EXPECT_EQ(out.app_data, Message::from_text("application bytes").app_data);
}

TEST_P(AlgorithmContract, OutgoingPreservesAppData) {
  const auto alg = fresh();
  alg->view_changed(View{2, ProcessSet(4, {0, 1, 2})});
  const Message app = Message::from_text("user payload");
  const auto out = alg->outgoing_message_poll(app);
  if (out.has_value()) {
    EXPECT_EQ(out->app_data, app.app_data);
  }
}

TEST_P(AlgorithmContract, QuiescesAfterBoundedPolling) {
  // Event-driven: with no new information, the poll must eventually return
  // nothing, forever (the application never needs to poll spontaneously).
  const auto alg = fresh();
  alg->view_changed(View{2, ProcessSet(4, {0, 1, 2})});
  int sends = 0;
  for (int i = 0; i < 50; ++i) {
    if (alg->outgoing_message_poll(Message::empty()).has_value()) ++sends;
  }
  EXPECT_LE(sends, 5);
  // Once drained, it stays drained.
  EXPECT_EQ(alg->outgoing_message_poll(Message::empty()), std::nullopt);
}

TEST_P(AlgorithmContract, ViewChangeClearsPrimaryUntilReestablished) {
  Gcs gcs(GetParam(), 4);
  EXPECT_TRUE(gcs.algorithm(0).in_primary());
  gcs.apply_partition(0, ProcessSet(4, {3}));
  // Immediately after the view change nobody is primary: agreement must be
  // re-established first (simple majority is the one exception -- it is
  // stateless and message-free, so its declaration is instantaneous).
  if (GetParam() != AlgorithmKind::kSimpleMajority) {
    EXPECT_FALSE(gcs.algorithm(0).in_primary());
  }
  test::settle(gcs);
  EXPECT_TRUE(gcs.algorithm(0).in_primary());
}

TEST_P(AlgorithmContract, IgnoresPayloadsFromOtherViews) {
  const auto alg = fresh();
  // A singleton view: no algorithm may consider it primary without a
  // protocol exchange (and simple majority: 1 of 4 is no quorum).
  alg->view_changed(View{5, ProcessSet(4, {0})});

  // Feed it every payload type stamped with a stale view id; none may
  // disturb it (no crash, no primary, and its own round-1 send intact).
  const auto feed = [&](std::shared_ptr<ProtocolPayload> p) {
    p->view_id = 4;
    Message m;
    m.protocol = std::move(p);
    (void)alg->incoming_message(std::move(m), 1);
  };
  auto state = std::make_shared<StateExchangePayload>();
  state->last_primary = Session{0, ProcessSet::full(4)};
  state->last_formed.assign(4, Session{0, ProcessSet::full(4)});
  feed(state);
  feed(std::make_shared<AttemptPayload>());
  feed(std::make_shared<GcRoundPayload>());
  feed(std::make_shared<Mr1pPendingPayload>());
  feed(std::make_shared<Mr1pProposePayload>());
  feed(std::make_shared<Mr1pAttemptPayload>());

  EXPECT_FALSE(alg->in_primary());
}

TEST_P(AlgorithmContract, DebugInfoIsCoherent) {
  const auto alg = fresh();
  const AlgorithmDebugInfo info = alg->debug_info();
  EXPECT_EQ(info.last_primary, alg->last_primary_session());
  EXPECT_EQ(info.last_primary.members, ProcessSet::full(4));
  EXPECT_EQ(info.ambiguous_count, 0u);
  EXPECT_FALSE(info.blocked);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmContract,
                         ::testing::ValuesIn(all_algorithm_kinds()),
                         [](const ::testing::TestParamInfo<AlgorithmKind>& p) {
                           std::string name(to_string(p.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AlgorithmNames, RoundTrip) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    const auto parsed = algorithm_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(algorithm_kind_from_string("nonsense"), std::nullopt);
}

}  // namespace
}  // namespace dynvote
