// Shared helpers for algorithm and harness tests.
#pragma once

#include <gtest/gtest.h>

#include "gcs/gcs.hpp"

namespace dynvote::test {

/// Run rounds until quiescent; fails the test if the system chatters past
/// `max_rounds`.
inline void settle(Gcs& gcs, std::size_t max_rounds = 200) {
  for (std::size_t i = 0; i < max_rounds; ++i) {
    if (!gcs.step_round()) return;
  }
  FAIL() << "system did not quiesce within " << max_rounds << " rounds";
}

/// True iff every member of `members` is in a primary component.
inline bool all_in_primary(const Gcs& gcs, const ProcessSet& members) {
  bool all = true;
  members.for_each([&](ProcessId p) {
    if (!gcs.algorithm(p).in_primary()) all = false;
  });
  return all;
}

/// Number of processes currently claiming to be in a primary component.
inline std::size_t primary_member_count(const Gcs& gcs) {
  std::size_t n = 0;
  for (ProcessId p = 0; p < gcs.process_count(); ++p) {
    if (gcs.algorithm(p).in_primary()) ++n;
  }
  return n;
}

/// Cross-delivery policies for scripted partitions.  The network callbacks
/// are non-owning (FunctionRef), so these return pointers to functions with
/// static lifetime rather than referencing a temporary lambda.
inline bool never_cross(ProcessId) { return false; }
inline bool always_cross(ProcessId) { return true; }
inline Network::CrossDeliveryFn no_cross() { return &never_cross; }
inline Network::CrossDeliveryFn all_cross() { return &always_cross; }

}  // namespace dynvote::test
