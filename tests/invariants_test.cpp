// The invariant checker is itself a product ("none of the algorithms
// demonstrated an inconsistency" is a headline thesis result), so it must
// provably catch violations.  We feed it the exact naive algorithm the
// thesis's Figure 3-1 warns about -- majority-of-last-primary with no
// agreement protocol -- and check that it reports the split brain.
#include <gtest/gtest.h>

#include "core/quorum.hpp"
#include "gcs/gcs.hpp"
#include "sim/invariants.hpp"
#include "sim_test_util.hpp"
#include "util/assert.hpp"

namespace dynvote {
namespace {

// The strawman from Figure 3-1: on every view, declare a primary if the
// view holds a majority of the last primary this process knows -- with no
// message exchange, so processes act on divergent knowledge.
class NaiveDynamicVoting final : public PrimaryComponentAlgorithm {
 public:
  NaiveDynamicVoting(ProcessId self, const View& initial_view)
      : PrimaryComponentAlgorithm(self, initial_view),
        last_primary_{initial_view.id, initial_view.members} {}

  void view_changed(const View& view) override {
    in_primary_ = is_subquorum(view.members, last_primary_.members);
    if (in_primary_) last_primary_ = Session{view.id, view.members};
  }

  Message incoming_message(Message m, ProcessId) override {
    m.protocol = nullptr;
    return m;
  }
  std::optional<Message> outgoing_message_poll(const Message&) override {
    return std::nullopt;
  }
  bool in_primary() const override { return in_primary_; }
  std::string_view name() const override { return "naive"; }
  AlgorithmDebugInfo debug_info() const override {
    return AlgorithmDebugInfo{last_primary_, 0, false, 0};
  }
  const Session& last_primary_session() const override {
    return last_primary_;
  }

 private:
  Session last_primary_;
  bool in_primary_ = true;
};

Gcs::AlgorithmFactory naive_factory() {
  return [](ProcessId self, const View& initial) {
    return std::make_unique<NaiveDynamicVoting>(self, initial);
  };
}

TEST(Invariants, CleanRunPasses) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  InvariantChecker checker(gcs);
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  checker.check(gcs);
  test::settle(gcs);
  checker.check(gcs);
  EXPECT_GE(checker.checks_performed(), 2u);
}

TEST(Invariants, CatchesTheFigure31SplitBrain) {
  // Figure 3-1 with the naive rule, no messages needed:
  //  * {a,b,c,d,e} partitions into {a,b,c} | {d,e}: {a,b,c} is a majority
  //    of the old primary -> declares itself primary immediately;
  //  * {a,b,c} splits into {a,b} | {c}: {a,b} keeps the primary (majority
  //    of {a,b,c}) -- but c's knowledge of the {a,b,c} primary rides along;
  //  * c rejoins {d,e}: from c's stale perspective {c,d,e} is a majority of
  //    {a,b,c,d,e}... except c updated its last primary to {a,b,c}.  Use
  //    d's perspective instead: d never saw {a,b,c}, so for d the view
  //    {c,d,e} is a majority of the original five -> primary.
  //  Now {a,b} and {c,d,e} are both live primaries.
  Gcs gcs(naive_factory(), 5);
  InvariantChecker checker(gcs);

  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  checker.check(gcs);
  const std::size_t abc = gcs.topology().component_of(0);
  gcs.apply_partition(abc, ProcessSet(5, {2}));
  checker.check(gcs);

  gcs.apply_merge(gcs.topology().component_of(2),
                  gcs.topology().component_of(3));
  // d and e declare {c,d,e} primary while {a,b} is still primary -- but c,
  // whose last primary is {a,b,c}, does NOT consider {c,d,e} a quorum.
  // That is *also* a violation: members of one view disagreeing.
  EXPECT_THROW(checker.check(gcs), InvariantViolation);
}

TEST(Invariants, CatchesTwoLivePrimaries) {
  // Remove c from the story so each component agrees internally, leaving
  // the pure two-live-primaries violation.
  Gcs gcs(naive_factory(), 6);
  InvariantChecker checker(gcs);

  // {0,1,2,3} | {4,5}: left side is a majority of the original -> primary.
  gcs.apply_partition(0, ProcessSet(6, {4, 5}));
  checker.check(gcs);
  // {0,1} | {2,3}: {0,1} keeps the chain ({0,1} is half of {0,1,2,3} with
  // the lexical smallest).  {2,3} drops out.
  gcs.apply_partition(0, ProcessSet(6, {2, 3}));
  checker.check(gcs);
  // {2,3} + {4,5}: all four still think the last primary is the one they
  // were last part of... {2,3}'s is {0,1,2,3}, {4,5}'s is the original six.
  // {2,3,4,5} is 4 of 6: a majority of the original -- 4 and 5 declare.
  // 2 and 3 see 2 of 4 of {0,1,2,3} without its lexical smallest: refuse.
  gcs.apply_merge(gcs.topology().component_of(2),
                  gcs.topology().component_of(4));
  EXPECT_THROW(checker.check(gcs), InvariantViolation);
}

TEST(Invariants, ChecksAccumulate) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 4);
  InvariantChecker checker(gcs);
  for (int i = 0; i < 5; ++i) checker.check(gcs);
  EXPECT_EQ(checker.checks_performed(), 5u);
}

}  // namespace
}  // namespace dynvote
